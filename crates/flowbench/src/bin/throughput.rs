//! E7 — amortized-constant updates.
//!
//! The paper: "This leads to an amortized constant update time."
//! Evidence: per-update cost stays flat as (a) the trace grows and
//! (b) the node budget grows; mean chain steps per update stays small
//! and flat.
//!
//! ```sh
//! cargo run --release -p flowbench --bin throughput
//! ```

use flowbench::{Args, Table};
use flowkey::Schema;
use flowtrace::{profile, TraceGen};
use flowtree_core::{Config, FlowTree, Popularity};
use std::time::Instant;

fn main() {
    let args = Args::from_env();
    let seed: u64 = args.get("seed").unwrap_or(42);

    println!("== E7a: update rate vs node budget (1 M packets, backbone) ==\n");
    let t = Table::new(&[
        "budget",
        "updates/s",
        "ns/update",
        "mean chain steps",
        "compactions",
    ]);
    for budget in [10_000usize, 20_000, 40_000, 80_000, 160_000] {
        let mut cfg = profile::backbone(seed);
        cfg.packets = args.get("packets").unwrap_or(1_000_000);
        cfg.flows = cfg.flows.min(cfg.packets / 2);
        let mut tree = FlowTree::new(Schema::four_feature(), Config::with_budget(budget));
        let packets: Vec<_> = TraceGen::new(cfg).collect();
        let start = Instant::now();
        for pkt in &packets {
            tree.insert(&pkt.flow_key(), Popularity::packet(pkt.wire_len));
        }
        let secs = start.elapsed().as_secs_f64();
        let stats = tree.stats();
        t.row(&[
            &budget.to_string(),
            &format!("{:.2} M", packets.len() as f64 / secs / 1e6),
            &format!("{:.0}", secs * 1e9 / packets.len() as f64),
            &format!("{:.2}", stats.mean_chain_steps()),
            &stats.compactions.to_string(),
        ]);
    }

    println!("\n== E7b: per-update cost vs trace length (40 K nodes) ==\n");
    let t = Table::new(&["packets", "updates/s", "ns/update", "mean chain steps"]);
    for packets in [250_000u64, 500_000, 1_000_000, 2_000_000] {
        let mut cfg = profile::backbone(seed);
        cfg.packets = packets;
        cfg.flows = cfg.flows.min(packets / 2);
        let mut tree = FlowTree::new(Schema::four_feature(), Config::paper());
        let trace: Vec<_> = TraceGen::new(cfg).collect();
        let start = Instant::now();
        for pkt in &trace {
            tree.insert(&pkt.flow_key(), Popularity::packet(pkt.wire_len));
        }
        let secs = start.elapsed().as_secs_f64();
        t.row(&[
            &packets.to_string(),
            &format!("{:.2} M", packets as f64 / secs / 1e6),
            &format!("{:.0}", secs * 1e9 / packets as f64),
            &format!("{:.2}", tree.stats().mean_chain_steps()),
        ]);
    }
    println!("\n(flat ns/update and flat chain steps across both sweeps = amortized O(1))");
}
