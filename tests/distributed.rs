//! Distributed-summarization integration: merging per-site summaries is
//! equivalent to summarizing centrally, across the real pipeline.

use flowdist::{sim, SimConfig, TransferMode};
use flownet::{FlowCacheConfig, PacketMeta};
use flowtrace::{profile, TraceGen};
use flowtree::{Config, FlowTree, Popularity, Schema};

fn trace(packets: u64) -> Vec<PacketMeta> {
    let mut cfg = profile::backbone(77);
    cfg.packets = packets;
    cfg.flows = packets / 8;
    cfg.mean_pps = 25_000.0;
    TraceGen::new(cfg).collect()
}

fn sim_cfg(sites: u16, budget: usize, transfer: TransferMode) -> SimConfig {
    SimConfig {
        sites,
        window_ms: 1_000,
        schema: Schema::five_feature(),
        tree: Config::with_budget(budget),
        transfer,
        cache: FlowCacheConfig {
            idle_timeout_ms: 400,
            active_timeout_ms: 1_500,
            max_entries: 100_000,
        },
    }
}

#[test]
fn distributed_equals_centralized_with_headroom() {
    let trace = trace(60_000);
    // Central reference: one unbounded tree over the whole trace.
    let schema = Schema::five_feature();
    let mut central = FlowTree::new(schema, Config::with_budget(1_000_000));
    for pkt in &trace {
        central.insert(&pkt.flow_key(), Popularity::packet(pkt.wire_len));
    }
    // Distributed: 5 sites with generous budgets, merged at the end.
    let report = sim::run(
        sim_cfg(5, 500_000, TransferMode::Full),
        trace.iter().copied(),
    )
    .unwrap();
    let merged = report.collector.merged(None, 0, u64::MAX);
    // Packets and bytes agree exactly (the distributed path additionally
    // counts flow records, which the central per-packet path does not).
    assert_eq!(merged.total().packets, central.total().packets);
    assert_eq!(merged.total().bytes, central.total().bytes);
    // Pattern answers agree (both sides exact when nothing is evicted).
    for pattern in [
        "src=10.0.0.0/8",
        "dport=443",
        "dport=53 proto=udp",
        "src=100.0.0.0/7 dport=443",
    ] {
        let key = pattern.parse().unwrap();
        let a = central.estimate_pattern(&key).packets;
        let b = merged.estimate_pattern(&key).packets;
        assert!(
            (a - b).abs() < 1e-6,
            "{pattern}: central {a} vs distributed {b}"
        );
    }
}

#[test]
fn tight_budgets_still_conserve_and_stay_close() {
    let trace = trace(60_000);
    let report = sim::run(sim_cfg(3, 1_024, TransferMode::Full), trace.iter().copied()).unwrap();
    let merged = report.collector.merged(None, 0, u64::MAX);
    assert_eq!(
        merged.total().packets,
        60_000,
        "mass conserved under eviction"
    );

    // Chain-aligned coarse aggregates remain accurate even with tiny
    // budgets (off-chain skewed patterns — e.g. a single busy port
    // range — degrade with the uniform estimator; that trade-off is
    // measured by the estimator ablation bench, not asserted here).
    let mut exact = FlowTree::new(Schema::five_feature(), Config::with_budget(1_000_000));
    for pkt in &trace {
        exact.insert(&pkt.flow_key(), Popularity::packet(pkt.wire_len));
    }
    for pattern in [
        "src=0.0.0.0/1",
        "src=128.0.0.0/1",
        "dst=0.0.0.0/2",
        "dst=192.0.0.0/2",
    ] {
        let key = pattern.parse().unwrap();
        let a = exact.estimate_pattern(&key).packets;
        let b = merged.estimate_pattern(&key).packets;
        let rel = (a - b).abs() / a.max(1.0);
        assert!(rel < 0.2, "{pattern}: exact {a:.0} vs merged {b:.0}");
    }
}

#[test]
fn threaded_and_sync_pipelines_agree_under_delta_transfer() {
    let trace = trace(40_000);
    let a = sim::run(
        sim_cfg(4, 4_096, TransferMode::Delta),
        trace.iter().copied(),
    )
    .unwrap();
    let b = sim::run_threaded(
        sim_cfg(4, 4_096, TransferMode::Delta),
        trace.iter().copied(),
    )
    .unwrap();
    assert_eq!(
        a.collector.merged(None, 0, u64::MAX).total(),
        b.collector.merged(None, 0, u64::MAX).total()
    );
    assert_eq!(a.collector.stored_windows(), b.collector.stored_windows());
}

#[test]
fn lifted_mega_tree_supports_cross_site_time_drilldown() {
    let trace = trace(30_000);
    let report = sim::run(sim_cfg(4, 8_192, TransferMode::Full), trace.iter().copied()).unwrap();
    let mega = report.collector.lifted(200_000);
    assert_eq!(mega.total().packets, 30_000);
    // Per-site shares sum to the total.
    let mut sum = 0.0;
    for site in report.collector.sites() {
        let pat = format!("site={site}").parse().unwrap();
        sum += mega.estimate_pattern(&pat).packets;
    }
    assert!((sum - 30_000.0).abs() < 1e-6, "site shares sum: {sum}");
}
