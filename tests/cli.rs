//! Integration tests for the `ftree` CLI — the whole workflow a user
//! would run: summarize a capture, inspect, query, merge, diff.

use flownet::pcap::{PcapWriter, LINKTYPE_ETHERNET};
use flowtrace::{profile, TraceGen};
use std::path::PathBuf;
use std::process::{Command, Output};

fn ftree(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_ftree"))
        .args(args)
        .output()
        .expect("spawn ftree")
}

fn stdout(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).into_owned()
}

fn workdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("ftree-cli-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&d).expect("mkdir");
    d
}

fn write_capture(path: &PathBuf, seed: u64, packets: u64) {
    let mut cfg = profile::backbone(seed);
    cfg.packets = packets;
    cfg.flows = packets / 5;
    let file = std::fs::File::create(path).expect("create");
    let mut w = PcapWriter::new(std::io::BufWriter::new(file), LINKTYPE_ETHERNET).unwrap();
    for pkt in TraceGen::new(cfg) {
        w.write_packet(pkt.ts_micros, &TraceGen::frame_for(&pkt))
            .unwrap();
    }
    w.finish().unwrap();
}

#[test]
fn full_cli_workflow() {
    let dir = workdir("workflow");
    let pcap_a = dir.join("a.pcap");
    let pcap_b = dir.join("b.pcap");
    write_capture(&pcap_a, 1, 20_000);
    write_capture(&pcap_b, 2, 10_000);

    // summarize
    let tree_a = dir.join("a.ftree");
    let tree_b = dir.join("b.ftree");
    let out = ftree(&[
        "summarize",
        pcap_a.to_str().unwrap(),
        "-o",
        tree_a.to_str().unwrap(),
        "--budget",
        "4096",
    ]);
    assert!(out.status.success(), "{out:?}");
    assert!(stdout(&out).contains("20000 packets summarized"));
    let out = ftree(&[
        "summarize",
        pcap_b.to_str().unwrap(),
        "-o",
        tree_b.to_str().unwrap(),
        "--budget",
        "4096",
    ]);
    assert!(out.status.success());

    // info
    let out = ftree(&["info", tree_a.to_str().unwrap()]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("20000 packets"), "{text}");
    assert!(text.contains("schema:  Five"), "{text}");

    // query
    let out = ftree(&["query", tree_a.to_str().unwrap(), "dport=443"]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("packets"), "{}", stdout(&out));

    // topk
    let out = ftree(&["topk", tree_a.to_str().unwrap(), "--k", "3"]);
    assert!(out.status.success());
    assert_eq!(stdout(&out).lines().count(), 3);

    // hhh
    let out = ftree(&["hhh", tree_a.to_str().unwrap(), "--phi", "0.05"]);
    assert!(out.status.success());

    // merge: totals add
    let merged = dir.join("m.ftree");
    let out = ftree(&[
        "merge",
        "-o",
        merged.to_str().unwrap(),
        tree_a.to_str().unwrap(),
        tree_b.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("30000 packets"), "{}", stdout(&out));

    // diff: recovers a's total
    let diffed = dir.join("d.ftree");
    let out = ftree(&[
        "diff",
        "-o",
        diffed.to_str().unwrap(),
        merged.to_str().unwrap(),
        tree_b.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    assert!(
        stdout(&out).contains("net 20000 packets"),
        "{}",
        stdout(&out)
    );

    // show renders the root line
    let out = ftree(&["show", merged.to_str().unwrap(), "--depth", "1"]);
    assert!(out.status.success());
    assert!(stdout(&out).starts_with("* ["), "{}", stdout(&out));

    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn cli_rejects_garbage_gracefully() {
    let dir = workdir("garbage");
    // Unknown command.
    let out = ftree(&["frobnicate"]);
    assert!(!out.status.success());
    // Missing args.
    assert!(!ftree(&["summarize"]).status.success());
    assert!(!ftree(&["merge", "-o", "x"]).status.success());
    // Corrupt tree file.
    let bad = dir.join("bad.ftree");
    std::fs::write(&bad, b"not a flowtree").unwrap();
    let out = ftree(&["info", bad.to_str().unwrap()]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("decode"), "{err}");
    // Bad pattern.
    let out = ftree(&["query", bad.to_str().unwrap(), "src=999.0.0.0/8"]);
    assert!(!out.status.success());
    // Help exits zero.
    assert!(ftree(&["help"]).status.success());
    let _ = std::fs::remove_dir_all(dir);
}
