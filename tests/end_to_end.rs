//! End-to-end integration: bytes on the wire all the way to answers.
//!
//! packets → pcap file bytes → pcap reader → header parsers → exporter
//! flow cache → NetFlow v5 encode/decode → site daemon → summary frames
//! → collector → query engine. Every hop is the real codec, no
//! shortcuts.

use flowdist::{Collector, DaemonConfig, SiteDaemon, TransferMode};
use flownet::netflow5;
use flownet::pcap::{PcapReader, PcapWriter, LINKTYPE_ETHERNET};
use flownet::{parse_ethernet, FlowCache, FlowCacheConfig, FlowRecord};
use flowquery::{parse, QueryEngine, QueryOutput};
use flowtrace::{profile, GroundTruth, TraceGen};
use flowtree::{Config, Popularity, Schema};

#[test]
fn pcap_to_query_pipeline() {
    // 1. Generate a capture in memory (byte-accurate frames).
    let mut cfg = profile::backbone(5);
    cfg.packets = 40_000;
    cfg.flows = 6_000;
    cfg.mean_pps = 20_000.0; // ≈ 2 s
    let mut pcap_bytes = Vec::new();
    {
        let mut w = PcapWriter::new(&mut pcap_bytes, LINKTYPE_ETHERNET).unwrap();
        for pkt in TraceGen::new(cfg.clone()) {
            w.write_packet(pkt.ts_micros, &TraceGen::frame_for(&pkt))
                .unwrap();
        }
        w.finish().unwrap();
    }

    // 2. Read it back and push through the exporter + NetFlow wire.
    let reader = PcapReader::new(&pcap_bytes[..]).unwrap();
    let mut cache = FlowCache::new(FlowCacheConfig {
        idle_timeout_ms: 300,
        active_timeout_ms: 1_000,
        max_entries: 50_000,
    });
    let mut truth = GroundTruth::new();
    let schema = Schema::five_feature();
    let mut wire_records: Vec<FlowRecord> = Vec::new();
    let push_records = |records: Vec<FlowRecord>, out: &mut Vec<FlowRecord>| {
        // Round-trip every record through real NetFlow v5 bytes.
        for chunk in records.chunks(netflow5::MAX_RECORDS) {
            if chunk.is_empty() {
                continue;
            }
            let bytes = netflow5::encode(chunk, 2_000_000_000, 0);
            let (_, decoded) = netflow5::decode(&bytes).unwrap();
            out.extend(decoded);
        }
    };
    let mut packets = 0u64;
    for pkt in reader.packets() {
        let pkt = pkt.unwrap();
        let meta = parse_ethernet(&pkt.data, pkt.ts_micros, pkt.orig_len).unwrap();
        truth.observe(
            schema.canonicalize(&meta.flow_key()),
            Popularity::packet(meta.wire_len),
        );
        packets += 1;
        push_records(cache.observe(&meta), &mut wire_records);
    }
    push_records(cache.drain(), &mut wire_records);
    assert_eq!(packets, 40_000);
    let wire_packets: u64 = wire_records.iter().map(|r| r.packets).sum();
    assert_eq!(wire_packets, 40_000, "no packet lost on the NetFlow wire");

    // 3. Daemon → summary frames → collector.
    let mut dcfg = DaemonConfig::new(2);
    dcfg.window_ms = 500;
    dcfg.schema = schema;
    dcfg.tree = Config::with_budget(16_384);
    dcfg.transfer = TransferMode::Full;
    let mut daemon = SiteDaemon::new(dcfg);
    let mut collector = Collector::new(schema, Config::with_budget(16_384));
    let mut frames = Vec::new();
    for r in &wire_records {
        frames.extend(daemon.ingest_record(r).into_iter().map(|s| s.encode()));
    }
    frames.extend(daemon.flush().into_iter().map(|s| s.encode()));
    for f in &frames {
        collector.apply_bytes(f).unwrap();
    }

    // 4. Conservation end to end.
    let merged = collector.merged(None, 0, u64::MAX);
    assert_eq!(merged.total().packets, 40_000);

    // 5. Queries agree with ground truth within the summary's error.
    let engine = QueryEngine::new(&collector);
    for pattern in ["dport=443", "dport=53", "proto=udp", "proto=tcp dport=443"] {
        let key = pattern.parse().unwrap();
        let q = parse(&format!("pop {pattern}"), u64::MAX - 1).unwrap();
        let QueryOutput::Pop(est) = engine.run(&q) else {
            panic!()
        };
        let exact = truth.pattern_popularity(&key).packets as f64;
        let err = (est.packets - exact).abs() / exact.max(1.0);
        assert!(
            err < 0.05,
            "{pattern}: est {:.0} vs exact {exact:.0} (err {err:.3})",
            est.packets
        );
    }
}
