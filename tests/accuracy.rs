//! Scaled-down Fig. 3: Flowtree accuracy against exact ground truth.
//!
//! The full 6 M-packet regeneration lives in the `flowbench`
//! `fig3_heatmap` binary; this integration test runs the same pipeline
//! at CI scale (400 k packets, 8 K nodes) and asserts the paper's
//! qualitative claims hold:
//!
//! * a large share of retained flows sits exactly on the diagonal
//!   (paper: > 57 % at 6 M packets / 40 K nodes),
//! * every flow above 1 % of the packets is present in the tree,
//! * off-diagonal mass stays close to the diagonal.

use flowtrace::{profile, GroundTruth, TraceGen};
use flowtree::{Config, FlowTree, Popularity, Schema};

struct Accuracy {
    diagonal_share: f64,
    close_share: f64,
    heavy_missing: usize,
}

fn run(profile_name: &str) -> Accuracy {
    let mut cfg = flowtrace::profile::by_name(profile_name, 17).unwrap();
    cfg.packets = 400_000;
    cfg.flows = 120_000;
    let schema = Schema::four_feature();
    let mut tree = FlowTree::new(schema, Config::with_budget(8_000));
    let mut truth = GroundTruth::new();
    for pkt in TraceGen::new(cfg) {
        let key = schema.canonicalize(&pkt.flow_key());
        tree.insert(&key, Popularity::packet(pkt.wire_len));
        truth.observe(key, Popularity::packet(pkt.wire_len));
    }
    assert_eq!(tree.total().packets, 400_000);

    // Estimated vs actual for every retained flow (the Fig. 3 axes).
    let actual = truth.actual_for_tree(&tree);
    let (mut diagonal, mut close, mut n) = (0usize, 0usize, 0usize);
    for view in tree.iter() {
        if view.key.is_root() {
            continue;
        }
        let est = tree.subtree_popularity(view.key).unwrap().packets;
        let act = actual.get(view.key).map(|p| p.packets).unwrap_or(0);
        n += 1;
        if est == act {
            diagonal += 1;
        }
        // "Close": within a factor 2 or ±5 packets (one heatmap cell).
        let ratio_ok = act > 0 && (est as f64 / act as f64).abs().log2().abs() <= 1.0;
        if est == act || ratio_ok || (est - act).abs() <= 5 {
            close += 1;
        }
    }

    // Every flow above 1 % of packets must be present.
    let threshold = 400_000 / 100;
    let heavy_missing = truth
        .iter()
        .filter(|(_, p)| p.packets >= threshold)
        .filter(|(k, _)| !tree.contains_key(k))
        .count();

    Accuracy {
        diagonal_share: diagonal as f64 / n.max(1) as f64,
        close_share: close as f64 / n.max(1) as f64,
        heavy_missing,
    }
}

#[test]
fn backbone_accuracy_matches_paper_shape() {
    let acc = run("backbone");
    assert!(
        acc.diagonal_share > 0.5,
        "diagonal share {:.3} (paper: > 0.57 at full scale)",
        acc.diagonal_share
    );
    assert!(
        acc.close_share > 0.9,
        "off-diagonal mass must hug the diagonal: {:.3}",
        acc.close_share
    );
    assert_eq!(acc.heavy_missing, 0, "all >1% flows must be present");
}

#[test]
fn transit_accuracy_matches_paper_shape() {
    let acc = run("transit");
    assert!(
        acc.diagonal_share > 0.4,
        "transit diagonal share {:.3}",
        acc.diagonal_share
    );
    assert!(acc.close_share > 0.85, "close share {:.3}", acc.close_share);
    assert_eq!(acc.heavy_missing, 0);
}

#[test]
fn adversarial_uniform_still_conserves_and_covers_heavy() {
    // Uniform popularity is the worst case for any popularity-based
    // summary — accuracy may drop but the structural guarantees hold.
    let mut cfg = profile::uniform(3);
    cfg.packets = 200_000;
    cfg.flows = 150_000;
    let schema = Schema::four_feature();
    let mut tree = FlowTree::new(schema, Config::with_budget(4_000));
    for pkt in TraceGen::new(cfg) {
        tree.insert(
            &schema.canonicalize(&pkt.flow_key()),
            Popularity::packet(pkt.wire_len),
        );
    }
    tree.validate();
    assert_eq!(tree.total().packets, 200_000);
    assert!(tree.len() <= 4_000);
}
