//! Quickstart: build a Flowtree, query it, merge and diff summaries.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use flowtrace::{profile, TraceGen};
use flowtree::{Config, FlowTree, Metric, Popularity, Schema};

fn main() {
    // 1. A Flowtree over 5-feature flows with a 4 096-node budget.
    let mut tree = FlowTree::new(Schema::five_feature(), Config::with_budget(4_096));

    // Feed it a synthetic backbone trace (100 k packets, deterministic).
    let mut cfg = profile::backbone(7);
    cfg.packets = 100_000;
    cfg.flows = 20_000;
    for pkt in TraceGen::new(cfg) {
        tree.insert(&pkt.flow_key(), Popularity::packet(pkt.wire_len));
    }
    println!(
        "ingested:   {} packets, {} bytes",
        tree.total().packets,
        tree.total().bytes
    );
    println!("tree size:  {} nodes (budget 4096)", tree.len());
    println!("wire size:  {} bytes encoded\n", tree.encoded_size());

    // 2. Hierarchical queries: any combination of prefixes, port
    //    ranges, and wildcards.
    for pattern in [
        "dport=443",
        "dport=443 proto=tcp",
        "dport=53",
        "sport=32768-65535",
    ] {
        let key = pattern.parse().unwrap();
        let est = tree.estimate_pattern(&key);
        println!("pop({pattern:<24}) ≈ {:>9.0} packets", est.packets);
    }

    // 3. Top flows and hierarchical heavy hitters.
    println!("\ntop 5 generalized flows by packets:");
    for (key, pop) in tree.top_k(5, Metric::Packets) {
        println!("  {:>8} pkts  {}", pop.packets, key);
    }
    println!("\nhierarchical heavy hitters above 2% of traffic:");
    for item in tree.hhh(0.02, Metric::Packets) {
        println!("  {:>8} pkts  {}", item.discounted.packets, item.key);
    }

    // 4. Merge and diff: summaries from two sites / two windows.
    let mut site_a = FlowTree::new(Schema::five_feature(), Config::with_budget(4_096));
    let mut site_b = FlowTree::new(Schema::five_feature(), Config::with_budget(4_096));
    let mut cfg_a = profile::backbone(21);
    cfg_a.packets = 20_000;
    cfg_a.flows = 5_000;
    let mut cfg_b = profile::backbone(22);
    cfg_b.packets = 30_000;
    cfg_b.flows = 5_000;
    for pkt in TraceGen::new(cfg_a) {
        site_a.insert(&pkt.flow_key(), Popularity::packet(pkt.wire_len));
    }
    for pkt in TraceGen::new(cfg_b) {
        site_b.insert(&pkt.flow_key(), Popularity::packet(pkt.wire_len));
    }
    let merged = FlowTree::merged(&site_a, &site_b).unwrap();
    println!(
        "\nmerge: site A ({}) + site B ({}) = {} packets (exact: totals add)",
        site_a.total().packets,
        site_b.total().packets,
        merged.total().packets
    );
    let mut diff = merged.clone();
    diff.diff(&site_b).unwrap();
    println!(
        "diff:  merged − site B = {} packets (recovers site A)",
        diff.total().packets
    );

    // 5. Ship it: the wire codec round-trips everything.
    let bytes = merged.encode();
    let back = FlowTree::decode(&bytes, Config::with_budget(4_096)).unwrap();
    assert_eq!(back.total(), merged.total());
    println!(
        "\ncodec: {} nodes → {} bytes → decoded OK ({:.1} B/node)",
        merged.len(),
        bytes.len(),
        bytes.len() as f64 / merged.len() as f64
    );
}
