//! The intro's second scenario: "IP address range X/8 has received a
//! lot of traffic — is it due to a specific IP, a specific /24, or what
//! is happening?" Plus the future-work alarming: the spike is detected
//! automatically by diffing consecutive windows.
//!
//! ```sh
//! cargo run --release --example drilldown
//! ```

use flowdist::{alarm, AlarmConfig, Collector, DaemonConfig, SiteDaemon, TransferMode};
use flowquery::{parse, QueryEngine, QueryOutput};
use flowtrace::{profile, TraceGen};
use flowtree::{Config, Metric, Popularity, Schema};
use std::net::IpAddr;

fn main() {
    let schema = Schema::five_feature();
    let tree_cfg = Config::with_budget(8_192);

    // One site, two 1 s windows. In window 2 a booter targets one host
    // inside 10.0.0.0/8.
    let mut daemon_cfg = DaemonConfig::new(0);
    daemon_cfg.window_ms = 1_000;
    daemon_cfg.schema = schema;
    daemon_cfg.tree = tree_cfg;
    daemon_cfg.transfer = TransferMode::Full;
    let mut daemon = SiteDaemon::new(daemon_cfg);
    let mut collector = Collector::new(schema, tree_cfg);

    let mut cfg = profile::backbone(55);
    cfg.packets = 120_000;
    cfg.flows = 25_000;
    cfg.mean_pps = 60_000.0; // ≈ 2 s
    cfg.start_micros = 0;
    let mut summaries = Vec::new();
    for pkt in TraceGen::new(cfg) {
        // Rewrite destinations into 10/8 so the question matches X/8.
        let mut pkt = pkt;
        if let IpAddr::V4(v4) = pkt.dst {
            let o = v4.octets();
            pkt.dst = IpAddr::V4([10, o[1], o[2], o[3]].into());
        }
        // The attack: in the second window, 1 in 3 packets hits
        // 10.77.1.9:443 from a small booter source set.
        if pkt.ts_micros > 1_000_000 && pkt.wire_len % 3 == 0 {
            pkt.src = IpAddr::V4([198, 18, 0, (pkt.wire_len % 8) as u8].into());
            pkt.sport = 4444;
            pkt.dst = IpAddr::V4([10, 77, 1, 9].into());
            pkt.dport = 443;
        }
        summaries.extend(daemon.ingest_mass(
            pkt.ts_micros / 1000,
            &pkt.flow_key(),
            Popularity::packet(pkt.wire_len),
        ));
    }
    summaries.extend(daemon.flush());
    for s in &summaries {
        collector.apply_bytes(&s.encode()).expect("valid frames");
    }

    let engine = QueryEngine::new(&collector);
    println!("== Drill-down: what is happening inside 10.0.0.0/8? ==\n");
    let mut pattern = "dst=10.0.0.0/8".to_string();
    loop {
        let q = parse(&format!("drill dst under {pattern}"), u64::MAX - 1).unwrap();
        let QueryOutput::Table(rows) = engine.run(&q) else {
            unreachable!()
        };
        let Some(top) = rows.first() else { break };
        println!(
            "under {pattern}: top refinement {} with {:.0} packets ({:.1}%)",
            top.key,
            top.est.packets,
            top.share * 100.0
        );
        // Keep drilling while one refinement dominates.
        if top.share < 0.5 || top.key.dst.depth() >= 33 {
            pattern = top.key.to_string();
            break;
        }
        pattern = top.key.to_string();
    }
    println!("\n→ localized: {pattern}");
    let q = parse(&format!("top 3 dport under {pattern}"), u64::MAX - 1).unwrap();
    println!("  its destination ports:");
    print!("{}", engine.run(&q).render(Metric::Packets));

    // The alarming path: diff window 1 vs window 0.
    let w0 = collector.window_tree(0, 0).expect("window 0 stored");
    let w1 = collector.window_tree(1_000, 0).expect("window 1 stored");
    let events = alarm::detect(
        w0,
        w1,
        &AlarmConfig {
            min_fraction: 0.05,
            min_packets: 2_000,
            max_events: 5,
        },
    );
    println!("\n== Alarms (window 0 → window 1) ==");
    for e in &events {
        println!(
            "  {:?} {:+} packets at {}",
            e.direction, e.delta.packets, e.key
        );
    }
    let attack_pattern = "dst=10.77.1.9/32".parse().unwrap();
    assert!(
        events.iter().any(|e| e.key.overlaps(&attack_pattern)),
        "the alarm engine must localize the attack"
    );
    println!("\nattack localized by the diff operator — no raw-trace access needed.");
}
