//! Hierarchical aggregation walkthrough: site → relay → root.
//!
//! Stands up a 2-tier hierarchy over 6 sites in-process, runs the same
//! trace through a flat collector, and shows (a) the root's
//! pre-aggregated exports agreeing with the flat merge and (b) the
//! query planner picking a different tier per scope.
//!
//! ```sh
//! cargo run --release --example hierarchy
//! ```

use flowdist::sim::SimConfig;
use flowdist::TransferMode;
use flownet::FlowCacheConfig;
use flowquery::parse;
use flowrelay::{
    run_hierarchy, run_hierarchy_with, DrainCadence, ExportConfig, ExportMode, HierarchyOptions,
    RelayTopology, Route,
};
use flowtrace::{profile, TraceGen};
use flowtree_core::Config;

fn main() {
    let cfg = SimConfig {
        sites: 6,
        window_ms: 1_000,
        schema: flowkey::Schema::five_feature(),
        tree: Config::with_budget(4_096),
        transfer: TransferMode::Full,
        cache: FlowCacheConfig {
            idle_timeout_ms: 500,
            active_timeout_ms: 2_000,
            max_entries: 10_000,
        },
    };
    let mut tcfg = profile::backbone(7);
    tcfg.packets = 30_000;
    tcfg.flows = 3_000;
    tcfg.mean_pps = 5_000.0;
    let trace: Vec<flownet::PacketMeta> = TraceGen::new(tcfg).collect();

    // Two sites per regional relay, relays feeding one root.
    let topo = RelayTopology::two_tier(6, 2);
    println!("topology:");
    for spec in &topo.relays {
        println!(
            "  {:<8} parent={:<8} sites={:?}",
            spec.name,
            spec.parent.as_deref().unwrap_or("-"),
            spec.sites
        );
    }

    let report = run_hierarchy(&topo, cfg, trace.iter().copied()).expect("hierarchy runs");
    let root = report.root();
    println!(
        "\nroot: {} aggregate windows exported, covering sites {:?}",
        report.root_exports.len(),
        root.live_coverage()
    );
    let flat = report
        .flat_collector(cfg.schema, cfg.tree)
        .expect("flat reference");
    println!(
        "conservation: hierarchy total = {} packets, flat total = {} packets",
        root.collector().total().packets,
        flat.merged(None, 0, u64::MAX).total().packets
    );

    // The planner routes each scope to the cheapest covering tier.
    let router = report.router();
    for text in [
        "hhh 0.02 by packets",  // network-wide → root aggregates
        "pop sites=2,3",        // one region → its relay, per-site trees
        "drill src sites=1,4",  // straddles regions → fan-out
        "bysite src=0.0.0.0/0", // per-site breakdown
    ] {
        let q = parse(text, u64::MAX - 1).expect("valid query");
        let routed = router.run(&q);
        let tier = match &routed.route {
            Route::Relay {
                relay,
                via_aggregates,
            } => format!(
                "{} [{}]",
                router.relay_name(*relay),
                if *via_aggregates {
                    "aggregated"
                } else {
                    "per-site"
                }
            ),
            Route::FanOut { relays } => format!("fan-out over {} relays", relays.len()),
            Route::BySite { relays } => format!("bysite over {} relays", relays.len()),
        };
        println!("\n$ {text}\n  routed to {tier}");
        if !routed.missing_windows.is_empty() {
            for gap in &routed.missing_windows {
                println!(
                    "  missing in window {}ms: {:?}",
                    gap.window_start_ms, gap.missing
                );
            }
        }
        let rendered = routed.output.render(flowtree_core::Metric::Packets);
        for line in rendered.lines().take(5) {
            println!("  {line}");
        }
    }

    // The delta export path: the same trace with per-frame drains, so
    // every window re-exports as sites trickle in — as structural
    // deltas vs full re-serialization.
    println!("\n== incremental export path (per-frame drains) ==");
    for mode in [ExportMode::Full, ExportMode::Delta] {
        let report = run_hierarchy_with(
            &topo,
            cfg,
            trace.iter().copied(),
            HierarchyOptions {
                export: ExportConfig {
                    mode,
                    ..ExportConfig::default()
                },
                cadence: DrainCadence::PerFrame,
            },
        )
        .expect("hierarchy runs");
        let l = report.root().ledger();
        let bytes: usize = report.root_exports.iter().map(|s| s.encoded_size()).sum();
        println!(
            "  {:?}: {} root exports ({} full / {} delta), {} bytes up from the root",
            mode, l.exported, l.full_exports, l.delta_exports, bytes
        );
    }
}
