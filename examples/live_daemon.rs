//! A live Flowtree daemon fed by real NetFlow v5 over UDP loopback.
//!
//! Exactly the Fig. 1 edge: a "router" thread exports NetFlow v5
//! datagrams to 127.0.0.1; the daemon thread receives them on a UDP
//! socket, decodes, summarizes into windows, and the main thread plays
//! collector — all over real sockets.
//!
//! ```sh
//! cargo run --release --example live_daemon
//! ```

use flowdist::net::{export_netflow, NetflowListener};
use flowdist::{Collector, DaemonConfig, SiteDaemon, TransferMode};
use flownet::FlowRecord;
use flowtrace::{profile, TraceGen};
use flowtree::{Config, Schema};
use std::net::UdpSocket;
use std::time::Duration;

fn main() {
    let schema = Schema::five_feature();
    let tree_cfg = Config::with_budget(4_096);

    // Daemon side: bind an ephemeral UDP port.
    let mut listener = NetflowListener::bind("127.0.0.1:0").expect("bind");
    listener
        .set_timeout(Duration::from_millis(200))
        .expect("timeout");
    let addr = listener.local_addr().expect("addr");
    println!("flowtree daemon listening for NetFlow v5 on {addr}");

    // Router side: generate flows and export them in a thread.
    let exporter = std::thread::spawn(move || {
        let mut cfg = profile::backbone(123);
        cfg.packets = 60_000;
        cfg.flows = 8_000;
        cfg.mean_pps = 30_000.0;
        let socket = UdpSocket::bind("127.0.0.1:0").expect("bind sender");
        let mut cache = flownet::FlowCache::new(flownet::FlowCacheConfig {
            idle_timeout_ms: 300,
            active_timeout_ms: 1_000,
            max_entries: 50_000,
        });
        let mut datagrams = 0usize;
        let mut batch: Vec<FlowRecord> = Vec::new();
        let flush = |batch: &mut Vec<FlowRecord>, datagrams: &mut usize| {
            if !batch.is_empty() {
                *datagrams += export_netflow(&socket, addr, batch, 2_000_000).expect("send");
                batch.clear();
            }
        };
        for pkt in TraceGen::new(cfg) {
            batch.extend(cache.observe(&pkt));
            if batch.len() >= 30 {
                flush(&mut batch, &mut datagrams);
            }
        }
        batch.extend(cache.drain());
        flush(&mut batch, &mut datagrams);
        println!("router: exported flows in {datagrams} datagrams");
    });

    // Daemon loop: receive until the exporter finishes and the socket
    // stays quiet.
    let mut daemon_cfg = DaemonConfig::new(1);
    daemon_cfg.window_ms = 500;
    daemon_cfg.schema = schema;
    daemon_cfg.tree = tree_cfg;
    daemon_cfg.transfer = TransferMode::Full;
    let mut daemon = SiteDaemon::new(daemon_cfg);
    let mut collector = Collector::new(schema, tree_cfg);
    let mut quiet = 0;
    while quiet < 5 {
        match listener.poll_once().expect("recv") {
            Some(records) => {
                quiet = 0;
                for r in records {
                    for summary in daemon.ingest_record(&r) {
                        collector.apply_bytes(&summary.encode()).expect("apply");
                    }
                }
            }
            None => quiet += 1,
        }
    }
    exporter.join().expect("exporter thread");
    for summary in daemon.flush() {
        collector.apply_bytes(&summary.encode()).expect("apply");
    }

    let stats = daemon.stats();
    println!(
        "daemon: {} records over UDP, {} windows summarized, {} summary bytes",
        stats.records, stats.summaries, stats.summary_bytes
    );
    let merged = collector.merged(None, 0, u64::MAX);
    println!(
        "collector: {} packets / {} bytes total across windows",
        merged.total().packets,
        merged.total().bytes
    );
    assert!(merged.total().packets > 0, "traffic must arrive end to end");
    println!("end-to-end over real UDP sockets: OK");
}
