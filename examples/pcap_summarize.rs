//! Summarize a pcap capture file — the paper's "online indexing of
//! flows on top of existing captures".
//!
//! With no argument, a synthetic capture is generated first so the
//! example is self-contained; pass a path to summarize your own file.
//!
//! ```sh
//! cargo run --release --example pcap_summarize           # self-generated
//! cargo run --release --example pcap_summarize -- my.pcap
//! ```

use flownet::parse_ethernet;
use flownet::pcap::{PcapReader, PcapWriter, LINKTYPE_ETHERNET, LINKTYPE_RAW};
use flowtrace::{profile, TraceGen};
use flowtree::{Config, FlowTree, Metric, Popularity, Schema};
use std::fs::File;
use std::io::{BufReader, BufWriter};

fn main() {
    let path = std::env::args().nth(1).unwrap_or_else(|| {
        let path = std::env::temp_dir().join("flowtree_example.pcap");
        let path = path.to_string_lossy().into_owned();
        println!("generating a synthetic capture at {path} …");
        let mut cfg = profile::backbone(99);
        cfg.packets = 50_000;
        cfg.flows = 10_000;
        let file = File::create(&path).expect("create pcap");
        let mut writer = PcapWriter::new(BufWriter::new(file), LINKTYPE_ETHERNET).expect("header");
        for pkt in TraceGen::new(cfg) {
            let frame = TraceGen::frame_for(&pkt);
            writer.write_packet(pkt.ts_micros, &frame).expect("write");
        }
        writer.finish().expect("flush");
        path
    });

    let file = File::open(&path).expect("open pcap");
    let raw_bytes = file.metadata().expect("metadata").len();
    let reader = PcapReader::new(BufReader::new(file)).expect("pcap header");
    let linktype = reader.linktype();
    assert!(
        linktype == LINKTYPE_ETHERNET || linktype == LINKTYPE_RAW,
        "unsupported link type {linktype}"
    );

    let mut tree = FlowTree::new(Schema::five_feature(), Config::paper());
    let (mut packets, mut parse_errors) = (0u64, 0u64);
    for pkt in reader.packets() {
        let pkt = pkt.expect("pcap record");
        let meta = if linktype == LINKTYPE_ETHERNET {
            parse_ethernet(&pkt.data, pkt.ts_micros, pkt.orig_len)
        } else {
            flownet::parse_ip(&pkt.data, pkt.ts_micros, pkt.orig_len)
        };
        match meta {
            Ok(meta) => {
                tree.insert(&meta.flow_key(), Popularity::packet(meta.wire_len));
                packets += 1;
            }
            Err(_) => parse_errors += 1,
        }
    }

    let summary_bytes = tree.encoded_size() as u64;
    println!("capture:   {path}");
    println!("packets:   {packets} parsed, {parse_errors} skipped");
    println!("raw size:  {:>12} bytes", raw_bytes);
    println!(
        "summary:   {:>12} bytes ({} nodes)",
        summary_bytes,
        tree.len()
    );
    println!(
        "reduction: {:.2}%  (the paper reports > 95%)",
        (1.0 - summary_bytes as f64 / raw_bytes as f64) * 100.0
    );

    println!("\ntop 5 traffic aggregates:");
    for (key, pop) in tree.top_k(5, Metric::Packets) {
        println!(
            "  {:>8} pkts  {:>11} bytes  {}",
            pop.packets, pop.bytes, key
        );
    }
}
