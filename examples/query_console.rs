//! An operator query console over a summary database.
//!
//! Ties the whole future-work system together: a directory of persisted
//! window summaries (the Fig. 1 database) is loaded into a collector,
//! then queries from stdin run against it — the "quick exploration"
//! loop the paper envisions, with no raw-trace access at any point.
//!
//! ```sh
//! # Self-contained demo (generates a small 3-site store first):
//! printf 'pop dport=443\nbysite src=0.0.0.0/0\ndrill src\nhhh 0.02\n' \
//!   | cargo run --release --example query_console
//!
//! # Or point it at an existing store directory:
//! cargo run --release --example query_console -- /var/lib/flowtree/store
//! ```

use flowdist::{Collector, DaemonConfig, SiteDaemon, SummaryStore, TransferMode};
use flowquery::{parse, QueryEngine};
use flowtrace::{profile, TraceGen};
use flowtree::{Config, Metric, Popularity, Schema};
use std::io::BufRead;

fn demo_store(dir: &std::path::Path) -> SummaryStore {
    let store = SummaryStore::open(dir).expect("open store");
    for site in 0..3u16 {
        let mut cfg = DaemonConfig::new(site);
        cfg.window_ms = 1_000;
        cfg.schema = Schema::five_feature();
        cfg.tree = Config::with_budget(4_096);
        cfg.transfer = TransferMode::Full;
        let mut daemon = SiteDaemon::new(cfg);
        let mut trace_cfg = profile::backbone(100 + site as u64);
        trace_cfg.packets = 30_000;
        trace_cfg.flows = 6_000;
        trace_cfg.mean_pps = 10_000.0; // ≈ 3 s → several windows
        let mut summaries = Vec::new();
        for pkt in TraceGen::new(trace_cfg) {
            summaries.extend(daemon.ingest_mass(
                pkt.ts_micros / 1_000,
                &pkt.flow_key(),
                Popularity::packet(pkt.wire_len),
            ));
        }
        summaries.extend(daemon.flush());
        for s in &summaries {
            store.put(s).expect("persist window");
        }
    }
    store
}

fn main() {
    let (store, cleanup) = match std::env::args().nth(1) {
        Some(path) => (SummaryStore::open(path).expect("open store"), None),
        None => {
            let dir = std::env::temp_dir().join(format!("flowtree-console-{}", std::process::id()));
            eprintln!(
                "(no store given — generating a 3-site demo store at {})",
                dir.display()
            );
            (demo_store(&dir), Some(dir))
        }
    };

    let mut collector = Collector::new(Schema::five_feature(), Config::with_budget(8_192));
    let report = store.load_into(&mut collector).expect("load store");
    eprintln!(
        "loaded {} windows from {} ({} rejected); sites: {:?}",
        report.loaded,
        store.root().display(),
        report.rejected,
        collector.sites()
    );
    eprintln!("query syntax: pop | bysite | top | drill | hhh   (empty line or EOF quits)\n");

    let engine = QueryEngine::new(&collector);
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = line.expect("stdin");
        let line = line.trim();
        if line.is_empty() {
            break;
        }
        match parse(line, u64::MAX - 1) {
            Ok(query) => {
                println!("> {line}");
                print!("{}", engine.run(&query).render(Metric::Packets));
                println!();
            }
            Err(e) => eprintln!("> {line}\n  {e}"),
        }
    }

    if let Some(dir) = cleanup {
        let _ = std::fs::remove_dir_all(dir);
    }
}
