//! Reproduces the paper's Fig. 2: example Flowtrees.
//!
//! * Fig. 2a — a 1-feature tree (source prefixes) over 2 M flows, with
//!   the exact node shapes of the figure: `1.*/8 [2,000,000]`,
//!   `1.1.1.0/24 [4,187]`, and two /30 leaves `[2]` and `[6]`.
//! * Fig. 2b — a 4-feature tree over 10 k flows showing multi-feature
//!   generalized flows (prefixes + dyadic port ranges).
//!
//! ```sh
//! cargo run --example figure2            # ASCII trees
//! cargo run --example figure2 -- --dot   # Graphviz dot on stdout
//! ```

use flowtrace::{profile, TraceGen};
use flowtree::{Config, FlowTree, Popularity, Schema};

fn main() {
    let dot = std::env::args().any(|a| a == "--dot");

    // ---- Fig. 2a: 1-feature tree -----------------------------------
    let mut fig2a = FlowTree::new(Schema::one_feature_src(), Config::with_budget(64));
    // The figure's counts: the /30s carry 2 and 6 packets, the /24
    // carries 4,187 in total, the /8 two million.
    fig2a.insert(
        &"src=1.1.1.12/30".parse().unwrap(),
        Popularity::new(2, 120, 1),
    );
    fig2a.insert(
        &"src=1.1.1.20/30".parse().unwrap(),
        Popularity::new(6, 360, 2),
    );
    fig2a.insert(
        &"src=1.1.1.0/24".parse().unwrap(),
        Popularity::new(4_187 - 8, 200_000, 40),
    );
    fig2a.insert(
        &"src=1.0.0.0/8".parse().unwrap(),
        Popularity::new(2_000_000 - 4_187, 90_000_000, 9_000),
    );
    println!("== Figure 2a: 1-feature Flowtree (2M flows) ==");
    println!(
        "{}",
        if dot {
            fig2a.to_dot()
        } else {
            fig2a.to_ascii()
        }
    );
    let q = fig2a
        .subtree_popularity(&"src=1.1.1.0/24".parse().unwrap())
        .expect("retained");
    assert_eq!(q.packets, 4_187, "the /24 answers 4,187 as in the figure");
    let q8 = fig2a
        .subtree_popularity(&"src=1.0.0.0/8".parse().unwrap())
        .expect("retained");
    assert_eq!(q8.packets, 2_000_000);

    // ---- Fig. 2b: 4-feature tree over 10k flows ---------------------
    let mut cfg = profile::backbone(2);
    cfg.packets = 10_000;
    cfg.flows = 2_500;
    let mut fig2b = FlowTree::new(Schema::four_feature(), Config::with_budget(24));
    for pkt in TraceGen::new(cfg) {
        fig2b.insert(&pkt.flow_key(), Popularity::packet(pkt.wire_len));
    }
    println!("== Figure 2b: 4-feature Flowtree (10k flows, 24-node budget) ==");
    println!(
        "{}",
        if dot {
            fig2b.to_dot()
        } else {
            fig2b.to_ascii()
        }
    );
    assert_eq!(fig2b.total().packets, 10_000);
    println!(
        "(root accounts for all {} packets — compression folds counts, never drops them)",
        fig2b.total().packets
    );
}
