//! The Fig. 1 scenario: five ISP sites, one peer, distributed queries.
//!
//! "ISP operators want to know, in the last 24 hours, what is the total
//! volume of traffic sent by one of its peers to all of five ISP's
//! sites." This example runs the whole pipeline — packets → per-site
//! exporters → Flowtree daemons → windowed summaries → collector — and
//! answers exactly that question with the query language, then compares
//! full vs delta transfer volume.
//!
//! ```sh
//! cargo run --release --example multisite
//! ```

use flowdist::{sim, SimConfig, TransferMode};
use flownet::{FlowCacheConfig, PacketMeta};
use flowquery::{parse, QueryEngine, QueryOutput};
use flowtrace::{profile, TraceGen};
use flowtree::{Config, Metric, Schema};
use std::net::IpAddr;

/// The peer whose traffic the operators ask about (a /24 they announce).
const PEER_PREFIX: [u8; 3] = [203, 0, 113];

fn main() {
    // A trace: backbone background plus the peer's traffic mixed in.
    let mut cfg = profile::backbone(33);
    cfg.packets = 300_000;
    cfg.flows = 40_000;
    cfg.mean_pps = 50_000.0; // ≈ 6 s of traffic → several 1 s windows
    let background = TraceGen::new(cfg);
    let trace = background.map(|mut pkt| {
        // Rewrite ~12 % of sources into the peer's /24.
        if pkt.wire_len % 8 == 0 {
            if let IpAddr::V4(v4) = pkt.src {
                let o = v4.octets();
                pkt.src = IpAddr::V4([PEER_PREFIX[0], PEER_PREFIX[1], PEER_PREFIX[2], o[3]].into());
            }
        }
        pkt
    });

    let sim_cfg = SimConfig {
        sites: 5,
        window_ms: 1_000, // scaled-down "5-minute" windows
        schema: Schema::five_feature(),
        tree: Config::with_budget(8_192),
        transfer: TransferMode::Full,
        cache: FlowCacheConfig {
            idle_timeout_ms: 400,
            active_timeout_ms: 1_500,
            max_entries: 100_000,
        },
    };
    let trace: Vec<PacketMeta> = trace.collect();
    let report = sim::run_threaded(sim_cfg, trace.iter().copied()).expect("pipeline");

    println!("== Fig. 1 pipeline: 5 sites, windowed summaries ==");
    println!("packets per site: {:?}", report.packets_per_site);
    println!(
        "stored (site, window) summaries: {}",
        report.collector.stored_windows()
    );
    println!(
        "raw NetFlow volume {:.1} MiB → summary volume {:.2} MiB  (reduction {:.1}%)\n",
        report.raw_bytes() as f64 / (1 << 20) as f64,
        report.summary_bytes() as f64 / (1 << 20) as f64,
        report.transfer_reduction() * 100.0
    );

    // The operators' question, in the query language.
    let engine = QueryEngine::new(&report.collector);
    let peer = format!(
        "pop src={}.{}.{}.0/24 sites=*",
        PEER_PREFIX[0], PEER_PREFIX[1], PEER_PREFIX[2]
    );
    let q = parse(&peer, u64::MAX - 1).expect("query parses");
    let QueryOutput::Pop(total) = engine.run(&q) else {
        unreachable!()
    };
    println!(
        "peer volume across all 5 sites: {:.0} packets / {:.2} MiB",
        total.packets,
        total.bytes / (1 << 20) as f64
    );

    // Per-site breakdown of the same pattern, as one `bysite` query.
    println!("\nper-site breakdown:");
    let q = parse(
        &format!(
            "bysite src={}.{}.{}.0/24",
            PEER_PREFIX[0], PEER_PREFIX[1], PEER_PREFIX[2]
        ),
        u64::MAX - 1,
    )
    .unwrap();
    print!("{}", engine.run(&q).render(Metric::Packets));

    // Where does the peer send its traffic? (merge + drill)
    let q = parse(
        &format!(
            "top 5 dport under src={}.{}.{}.0/24",
            PEER_PREFIX[0], PEER_PREFIX[1], PEER_PREFIX[2]
        ),
        u64::MAX - 1,
    )
    .unwrap();
    println!("\npeer's top destination ports:");
    print!("{}", engine.run(&q).render(Metric::Packets));

    // Full vs delta transfer on the same trace.
    let mut delta_cfg = sim_cfg;
    delta_cfg.transfer = TransferMode::Delta;
    let delta = sim::run(delta_cfg, trace.iter().copied()).expect("pipeline");
    println!(
        "\ntransfer policy on this trace: full = {} KiB, delta = {} KiB",
        report.summary_bytes() / 1024,
        delta.summary_bytes() / 1024
    );
    println!("(deltas win when consecutive windows are similar; see the mergediff bench)");

    // Fig. 1's database: persist every window to disk, reload into a
    // fresh collector, and confirm the answers survive the round trip.
    let store_dir = std::env::temp_dir().join(format!("flowtree-multisite-{}", std::process::id()));
    let store = flowdist::SummaryStore::open(&store_dir).expect("open store");
    let mut persisted = 0usize;
    for (start, site) in report.collector.window_keys() {
        let tree = report
            .collector
            .window_tree(start, site)
            .expect("listed")
            .clone();
        let summary = flowdist::Summary {
            site,
            window: flowdist::WindowId {
                start_ms: start,
                span_ms: 1_000,
            },
            seq: start / 1_000 + 1,
            kind: flowdist::SummaryKind::Full,
            provenance: None,
            epoch: None,
            tree,
        };
        store.put(&summary).expect("persist");
        persisted += 1;
    }
    let mut reloaded = flowdist::Collector::new(Schema::five_feature(), Config::with_budget(8_192));
    let loadrep = store.load_into(&mut reloaded).expect("load");
    println!(
        "\ndatabase: persisted {persisted} windows to {}, reloaded {} (rejected {})",
        store_dir.display(),
        loadrep.loaded,
        loadrep.rejected
    );
    assert_eq!(
        reloaded.merged(None, 0, u64::MAX).total().packets,
        report.collector.merged(None, 0, u64::MAX).total().packets,
        "answers must survive the disk round trip"
    );
    let _ = std::fs::remove_dir_all(&store_dir);
    println!("reload parity verified — summaries are the system of record.");
}
